/**
 * @file
 * Side-by-side comparison of every evaluated routing algorithm on one
 * traffic pattern and load: latency, throughput, blocking statistics,
 * and the analytic adaptiveness metrics — a one-screen summary of the
 * paper's Table 1 and Fig. 5 story.
 *
 * Usage: routing_comparison [key=value ...]
 *   e.g. routing_comparison traffic=transpose injection_rate=0.35
 */

#include <cstdio>

#include "metrics/adaptiveness.hpp"
#include "network/traffic_manager.hpp"
#include "sim/log.hpp"
#include "sim/config.hpp"

int
main(int argc, char** argv)
{
    using namespace footprint;
    setQuiet(true);

    SimConfig cfg = defaultConfig();
    cfg.set("traffic", "uniform");
    cfg.setDouble("injection_rate", 0.40);
    cfg.setInt("warmup_cycles", 2000);
    cfg.setInt("measure_cycles", 4000);
    cfg.setInt("drain_cycles", 8000);
    cfg.parseArgs(argc, argv);

    const Mesh mesh(static_cast<int>(cfg.getInt("mesh_width")),
                    static_cast<int>(cfg.getInt("mesh_height")));
    const int num_vcs = static_cast<int>(cfg.getInt("num_vcs"));

    std::printf("== Routing comparison: %s traffic at %.2f "
                "flits/node/cycle (%dx%d, %d VCs) ==\n\n",
                cfg.getStr("traffic").c_str(),
                cfg.getDouble("injection_rate"), mesh.width(),
                mesh.height(), num_vcs);
    std::printf("%-16s %10s %10s %9s %9s %9s %9s\n", "algorithm",
                "latency", "accepted", "purity", "P_adapt",
                "VC_adapt", "status");

    for (const std::string& algo : allRoutingAlgorithmNames()) {
        SimConfig run_cfg = cfg;
        run_cfg.set("routing", algo);
        const RunStats stats = runExperiment(run_cfg);
        // The adaptiveness metrics describe the base algorithm's path
        // diversity (XORDET only restricts VCs).
        const std::string base =
            algo.substr(0, algo.find('+'));
        std::printf("%-16s %10.2f %10.3f %9.3f %9.3f %9.3f %9s\n",
                    algo.c_str(), stats.avgLatency(),
                    stats.acceptedFlitsPerNodeCycle,
                    stats.counters.purity(),
                    adaptivenessReport(mesh, base, num_vcs)
                        .portAdaptiveness,
                    vcAdaptiveness(algo, num_vcs),
                    stats.saturated ? "SAT" : "ok");
    }
    return 0;
}
