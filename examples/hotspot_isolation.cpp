/**
 * @file
 * Endpoint-congestion isolation demo (the paper's Sec. 3.3 / Fig. 4
 * story): drive the Table-3 hotspot flows plus uniform background
 * traffic, then compare DBAR and Footprint on
 *  - background packet latency (who suffers from the hotspot),
 *  - the congestion tree of each hotspot endpoint (branches and
 *    thickness in VCs),
 *  - purity of blocking.
 *
 * Usage: hotspot_isolation [key=value ...]
 *   e.g. hotspot_isolation injection_rate=0.5 num_vcs=8
 */

#include <cstdio>
#include <set>

#include "metrics/congestion_tree.hpp"
#include "metrics/purity.hpp"
#include "network/network.hpp"
#include "network/traffic_manager.hpp"
#include "sim/log.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "traffic/pattern.hpp"

namespace {

using namespace footprint;

/** Run the hotspot scenario on a live network and snapshot trees. */
void
inspectTrees(const SimConfig& base)
{
    Network net(base);
    const Mesh& mesh = net.mesh();
    const auto flows = defaultHotspotFlows(mesh);
    Rng gen(42);
    const double rate = base.getDouble("injection_rate");

    std::uint64_t id = 0;
    for (std::int64_t cycle = 0; cycle < 3000; ++cycle) {
        for (const auto& [src, dest] : flows) {
            if (gen.nextBool(rate)) {
                Packet p;
                p.id = ++id;
                p.src = src;
                p.dest = dest;
                p.size = 1;
                p.createTime = cycle;
                p.flowClass = FlowClass::Hotspot;
                net.endpoint(src).enqueue(p);
            }
        }
        net.step(cycle);
        for (int n = 0; n < mesh.numNodes(); ++n)
            (void)net.endpoint(n).drainEjected();
    }

    std::set<int> seen;
    for (const auto& [src, dest] : flows) {
        (void)src;
        if (!seen.insert(dest).second)
            continue;
        const CongestionTree tree = extractCongestionTree(net, dest);
        std::printf("    %s\n", tree.toString().c_str());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace footprint;
    setQuiet(true);

    SimConfig cfg = defaultConfig();
    cfg.set("traffic", "hotspot");
    cfg.setDouble("injection_rate", 0.45);
    cfg.setDouble("background_rate", 0.30);
    cfg.setInt("warmup_cycles", 2000);
    cfg.setInt("measure_cycles", 4000);
    cfg.setInt("drain_cycles", 8000);
    cfg.parseArgs(argc, argv);

    std::printf("== Hotspot isolation: DBAR vs Footprint ==\n");
    std::printf("hotspot rate %.2f, background rate %.2f\n\n",
                cfg.getDouble("injection_rate"),
                cfg.getDouble("background_rate"));

    for (const char* algo : {"dbar", "footprint"}) {
        SimConfig run_cfg = cfg;
        run_cfg.set("routing", algo);
        const RunStats stats = runExperiment(run_cfg);
        std::printf("%s:\n", algo);
        std::printf("  background latency : %.1f cycles%s\n",
                    stats.avgLatency(),
                    stats.saturated ? "  (collapsed)" : "");
        std::printf("  purity of blocking : %.3f  (blocking events: "
                    "%llu)\n",
                    stats.counters.purity(),
                    static_cast<unsigned long long>(
                        stats.counters.vcAllocFail));
        std::printf("  hotspot endpoint congestion trees:\n");
        inspectTrees(run_cfg);
        std::printf("\n");
    }
    std::printf("Footprint confines each hotspot's tree to few VCs "
                "per channel, so the\nbackground traffic keeps "
                "flowing where DBAR's spreads and collapses.\n");
    return 0;
}
