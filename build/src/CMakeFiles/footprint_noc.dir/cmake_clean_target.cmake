file(REMOVE_RECURSE
  "libfootprint_noc.a"
)
