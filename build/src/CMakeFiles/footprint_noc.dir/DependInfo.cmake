
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/adaptiveness.cpp" "src/CMakeFiles/footprint_noc.dir/metrics/adaptiveness.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/metrics/adaptiveness.cpp.o.d"
  "/root/repo/src/metrics/congestion_tree.cpp" "src/CMakeFiles/footprint_noc.dir/metrics/congestion_tree.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/metrics/congestion_tree.cpp.o.d"
  "/root/repo/src/metrics/cost_model.cpp" "src/CMakeFiles/footprint_noc.dir/metrics/cost_model.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/metrics/cost_model.cpp.o.d"
  "/root/repo/src/metrics/purity.cpp" "src/CMakeFiles/footprint_noc.dir/metrics/purity.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/metrics/purity.cpp.o.d"
  "/root/repo/src/network/endpoint.cpp" "src/CMakeFiles/footprint_noc.dir/network/endpoint.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/network/endpoint.cpp.o.d"
  "/root/repo/src/network/network.cpp" "src/CMakeFiles/footprint_noc.dir/network/network.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/network/network.cpp.o.d"
  "/root/repo/src/network/sweep.cpp" "src/CMakeFiles/footprint_noc.dir/network/sweep.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/network/sweep.cpp.o.d"
  "/root/repo/src/network/traffic_manager.cpp" "src/CMakeFiles/footprint_noc.dir/network/traffic_manager.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/network/traffic_manager.cpp.o.d"
  "/root/repo/src/router/allocators.cpp" "src/CMakeFiles/footprint_noc.dir/router/allocators.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/router/allocators.cpp.o.d"
  "/root/repo/src/router/channel.cpp" "src/CMakeFiles/footprint_noc.dir/router/channel.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/router/channel.cpp.o.d"
  "/root/repo/src/router/flit.cpp" "src/CMakeFiles/footprint_noc.dir/router/flit.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/router/flit.cpp.o.d"
  "/root/repo/src/router/router.cpp" "src/CMakeFiles/footprint_noc.dir/router/router.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/router/router.cpp.o.d"
  "/root/repo/src/router/vc_state.cpp" "src/CMakeFiles/footprint_noc.dir/router/vc_state.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/router/vc_state.cpp.o.d"
  "/root/repo/src/routing/dbar.cpp" "src/CMakeFiles/footprint_noc.dir/routing/dbar.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/routing/dbar.cpp.o.d"
  "/root/repo/src/routing/dor.cpp" "src/CMakeFiles/footprint_noc.dir/routing/dor.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/routing/dor.cpp.o.d"
  "/root/repo/src/routing/footprint.cpp" "src/CMakeFiles/footprint_noc.dir/routing/footprint.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/routing/footprint.cpp.o.d"
  "/root/repo/src/routing/odd_even.cpp" "src/CMakeFiles/footprint_noc.dir/routing/odd_even.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/routing/odd_even.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/CMakeFiles/footprint_noc.dir/routing/routing.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/routing/routing.cpp.o.d"
  "/root/repo/src/routing/xordet.cpp" "src/CMakeFiles/footprint_noc.dir/routing/xordet.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/routing/xordet.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/footprint_noc.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/log.cpp" "src/CMakeFiles/footprint_noc.dir/sim/log.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/sim/log.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/footprint_noc.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/footprint_noc.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/sim/stats.cpp.o.d"
  "/root/repo/src/topo/mesh.cpp" "src/CMakeFiles/footprint_noc.dir/topo/mesh.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/topo/mesh.cpp.o.d"
  "/root/repo/src/traffic/injection.cpp" "src/CMakeFiles/footprint_noc.dir/traffic/injection.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/traffic/injection.cpp.o.d"
  "/root/repo/src/traffic/pattern.cpp" "src/CMakeFiles/footprint_noc.dir/traffic/pattern.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/traffic/pattern.cpp.o.d"
  "/root/repo/src/traffic/trace.cpp" "src/CMakeFiles/footprint_noc.dir/traffic/trace.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/traffic/trace.cpp.o.d"
  "/root/repo/src/traffic/trace_gen.cpp" "src/CMakeFiles/footprint_noc.dir/traffic/trace_gen.cpp.o" "gcc" "src/CMakeFiles/footprint_noc.dir/traffic/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
