# Empty dependencies file for footprint_noc.
# This may be replaced when dependencies are built.
