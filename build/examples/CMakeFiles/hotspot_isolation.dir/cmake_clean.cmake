file(REMOVE_RECURSE
  "CMakeFiles/hotspot_isolation.dir/hotspot_isolation.cpp.o"
  "CMakeFiles/hotspot_isolation.dir/hotspot_isolation.cpp.o.d"
  "hotspot_isolation"
  "hotspot_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
