# Empty dependencies file for hotspot_isolation.
# This may be replaced when dependencies are built.
