file(REMOVE_RECURSE
  "CMakeFiles/routing_comparison.dir/routing_comparison.cpp.o"
  "CMakeFiles/routing_comparison.dir/routing_comparison.cpp.o.d"
  "routing_comparison"
  "routing_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
