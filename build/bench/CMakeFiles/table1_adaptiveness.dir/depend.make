# Empty dependencies file for table1_adaptiveness.
# This may be replaced when dependencies are built.
