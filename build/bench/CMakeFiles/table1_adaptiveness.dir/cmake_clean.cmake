file(REMOVE_RECURSE
  "CMakeFiles/table1_adaptiveness.dir/table1_adaptiveness.cpp.o"
  "CMakeFiles/table1_adaptiveness.dir/table1_adaptiveness.cpp.o.d"
  "table1_adaptiveness"
  "table1_adaptiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_adaptiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
