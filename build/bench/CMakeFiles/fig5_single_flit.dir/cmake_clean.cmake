file(REMOVE_RECURSE
  "CMakeFiles/fig5_single_flit.dir/fig5_single_flit.cpp.o"
  "CMakeFiles/fig5_single_flit.dir/fig5_single_flit.cpp.o.d"
  "fig5_single_flit"
  "fig5_single_flit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_single_flit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
