# Empty dependencies file for fig2_congestion_tree.
# This may be replaced when dependencies are built.
