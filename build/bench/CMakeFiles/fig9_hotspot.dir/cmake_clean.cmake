file(REMOVE_RECURSE
  "CMakeFiles/fig9_hotspot.dir/fig9_hotspot.cpp.o"
  "CMakeFiles/fig9_hotspot.dir/fig9_hotspot.cpp.o.d"
  "fig9_hotspot"
  "fig9_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
