# Empty compiler generated dependencies file for fig9_hotspot.
# This may be replaced when dependencies are built.
