file(REMOVE_RECURSE
  "CMakeFiles/table_cost.dir/table_cost.cpp.o"
  "CMakeFiles/table_cost.dir/table_cost.cpp.o.d"
  "table_cost"
  "table_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
