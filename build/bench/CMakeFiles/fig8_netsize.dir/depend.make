# Empty dependencies file for fig8_netsize.
# This may be replaced when dependencies are built.
