file(REMOVE_RECURSE
  "CMakeFiles/fig8_netsize.dir/fig8_netsize.cpp.o"
  "CMakeFiles/fig8_netsize.dir/fig8_netsize.cpp.o.d"
  "fig8_netsize"
  "fig8_netsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_netsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
