file(REMOVE_RECURSE
  "CMakeFiles/ablation_footprint.dir/ablation_footprint.cpp.o"
  "CMakeFiles/ablation_footprint.dir/ablation_footprint.cpp.o.d"
  "ablation_footprint"
  "ablation_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
