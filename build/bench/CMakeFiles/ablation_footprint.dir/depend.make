# Empty dependencies file for ablation_footprint.
# This may be replaced when dependencies are built.
