file(REMOVE_RECURSE
  "CMakeFiles/fig10_traces.dir/fig10_traces.cpp.o"
  "CMakeFiles/fig10_traces.dir/fig10_traces.cpp.o.d"
  "fig10_traces"
  "fig10_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
