# Empty dependencies file for fig10_traces.
# This may be replaced when dependencies are built.
