# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_log[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_flit_channel[1]_include.cmake")
include("/root/repo/build/tests/test_vc_state[1]_include.cmake")
include("/root/repo/build/tests/test_allocators[1]_include.cmake")
include("/root/repo/build/tests/test_router[1]_include.cmake")
include("/root/repo/build/tests/test_routing_dor[1]_include.cmake")
include("/root/repo/build/tests/test_routing_oddeven[1]_include.cmake")
include("/root/repo/build/tests/test_routing_dbar[1]_include.cmake")
include("/root/repo/build/tests/test_routing_footprint[1]_include.cmake")
include("/root/repo/build/tests/test_xordet[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_endpoint[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_traffic_manager[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
