file(REMOVE_RECURSE
  "CMakeFiles/test_flit_channel.dir/test_flit_channel.cpp.o"
  "CMakeFiles/test_flit_channel.dir/test_flit_channel.cpp.o.d"
  "test_flit_channel"
  "test_flit_channel.pdb"
  "test_flit_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flit_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
