# Empty dependencies file for test_flit_channel.
# This may be replaced when dependencies are built.
