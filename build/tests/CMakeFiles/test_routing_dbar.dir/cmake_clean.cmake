file(REMOVE_RECURSE
  "CMakeFiles/test_routing_dbar.dir/test_routing_dbar.cpp.o"
  "CMakeFiles/test_routing_dbar.dir/test_routing_dbar.cpp.o.d"
  "test_routing_dbar"
  "test_routing_dbar.pdb"
  "test_routing_dbar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_dbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
