# Empty dependencies file for test_routing_dbar.
# This may be replaced when dependencies are built.
