# Empty compiler generated dependencies file for test_routing_oddeven.
# This may be replaced when dependencies are built.
