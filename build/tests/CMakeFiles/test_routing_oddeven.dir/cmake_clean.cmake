file(REMOVE_RECURSE
  "CMakeFiles/test_routing_oddeven.dir/test_routing_oddeven.cpp.o"
  "CMakeFiles/test_routing_oddeven.dir/test_routing_oddeven.cpp.o.d"
  "test_routing_oddeven"
  "test_routing_oddeven.pdb"
  "test_routing_oddeven[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_oddeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
