# Empty dependencies file for test_traffic_manager.
# This may be replaced when dependencies are built.
