file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_manager.dir/test_traffic_manager.cpp.o"
  "CMakeFiles/test_traffic_manager.dir/test_traffic_manager.cpp.o.d"
  "test_traffic_manager"
  "test_traffic_manager.pdb"
  "test_traffic_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
