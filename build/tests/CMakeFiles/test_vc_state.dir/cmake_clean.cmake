file(REMOVE_RECURSE
  "CMakeFiles/test_vc_state.dir/test_vc_state.cpp.o"
  "CMakeFiles/test_vc_state.dir/test_vc_state.cpp.o.d"
  "test_vc_state"
  "test_vc_state.pdb"
  "test_vc_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vc_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
