# Empty dependencies file for test_vc_state.
# This may be replaced when dependencies are built.
