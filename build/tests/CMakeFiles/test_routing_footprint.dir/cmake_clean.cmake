file(REMOVE_RECURSE
  "CMakeFiles/test_routing_footprint.dir/test_routing_footprint.cpp.o"
  "CMakeFiles/test_routing_footprint.dir/test_routing_footprint.cpp.o.d"
  "test_routing_footprint"
  "test_routing_footprint.pdb"
  "test_routing_footprint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
