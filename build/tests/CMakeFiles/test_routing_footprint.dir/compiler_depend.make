# Empty compiler generated dependencies file for test_routing_footprint.
# This may be replaced when dependencies are built.
