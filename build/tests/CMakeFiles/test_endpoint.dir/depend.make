# Empty dependencies file for test_endpoint.
# This may be replaced when dependencies are built.
