file(REMOVE_RECURSE
  "CMakeFiles/test_xordet.dir/test_xordet.cpp.o"
  "CMakeFiles/test_xordet.dir/test_xordet.cpp.o.d"
  "test_xordet"
  "test_xordet.pdb"
  "test_xordet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xordet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
