# Empty dependencies file for test_xordet.
# This may be replaced when dependencies are built.
