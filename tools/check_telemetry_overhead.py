#!/usr/bin/env python3
"""Gate the overhead of compiled-in-but-disabled observability.

Runs the micro_router google-benchmark binary and compares the
whole-network-cycle benchmark without any telemetry attached
(``BM_NetworkCycle/30``) against the same loop with a disabled
TelemetryHub attached (``BM_NetworkCycleTelemetryIdle``). The two run
in the same process moments apart, so the comparison is stable across
machines, unlike absolute wall-clock numbers. The gate fails when the
idle-telemetry variant is more than ``--threshold`` (default 2%)
slower.

With ``--obs`` the idle variant is ``BM_NetworkCycleObsIdle`` instead:
the same loop with a disabled self-profiler attached and the heatmap
null check in place (DESIGN.md §14), gating the profiler/heatmap
subsystem's disabled overhead by the same rule.

A recorded baseline (``bench/micro_baseline.json``, written with
``--record``) provides a second, advisory comparison of absolute
timings against the checked-in reference machine; it warns by default
and only fails under ``--enforce-baseline``.

Usage:
  tools/check_telemetry_overhead.py --bench build/bench/micro_router
  tools/check_telemetry_overhead.py --bench ... --obs   # profiler gate
  tools/check_telemetry_overhead.py --bench ... --record  # new baseline
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

BARE = "BM_NetworkCycle/30"
IDLE = "BM_NetworkCycleTelemetryIdle"
OBS_IDLE = "BM_NetworkCycleObsIdle"
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "micro_baseline.json")


def run_benchmarks(bench, repetitions, idle):
    """Run the two gated benchmarks, return {name: min_real_time_ns}."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        out_path = f.name
    try:
        cmd = [
            bench,
            "--benchmark_filter=^(%s|%s)$" % (BARE.replace("/", "/"),
                                              idle),
            "--benchmark_repetitions=%d" % repetitions,
            "--benchmark_report_aggregates_only=false",
            "--benchmark_out_format=json",
            "--benchmark_out=%s" % out_path,
        ]
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(out_path) as f:
            report = json.load(f)
    finally:
        os.unlink(out_path)

    times = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["run_name"] if "run_name" in b else b["name"]
        # min across repetitions: least-noise estimator for a gate.
        t = float(b["real_time"])
        times[name] = min(times.get(name, t), t)
    return report, times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True,
                    help="path to the micro_router binary")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="max idle-telemetry overhead in percent")
    ap.add_argument("--repetitions", type=int, default=5,
                    help="benchmark repetitions (min is compared)")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="recorded-baseline JSON path")
    ap.add_argument("--record", action="store_true",
                    help="rewrite the baseline file from this run")
    ap.add_argument("--enforce-baseline", action="store_true",
                    help="fail (not warn) on recorded-baseline drift")
    ap.add_argument("--baseline-tolerance", type=float, default=25.0,
                    help="allowed drift vs recorded baseline, percent")
    ap.add_argument("--obs", action="store_true",
                    help="gate the disabled profiler/heatmap variant "
                         "(%s) instead of idle telemetry" % OBS_IDLE)
    args = ap.parse_args()

    idle_name = OBS_IDLE if args.obs else IDLE
    label = "idle-observability" if args.obs else "idle-telemetry"
    report, times = run_benchmarks(args.bench, args.repetitions,
                                   idle_name)
    missing = [n for n in (BARE, idle_name) if n not in times]
    if missing:
        print("error: benchmarks missing from report: %s" % missing)
        return 2

    bare, idle = times[BARE], times[idle_name]
    overhead = 100.0 * (idle - bare) / bare
    print("%-32s %12.0f ns" % (BARE, bare))
    print("%-32s %12.0f ns" % (idle_name, idle))
    print("%s overhead: %+.2f%% (threshold %.1f%%)"
          % (label, overhead, args.threshold))

    if args.record:
        # Preserve unrelated sections (e.g. the sweep_baseline used by
        # check_bench_regression.py) when re-recording the micro times.
        payload = {}
        if os.path.exists(args.baseline):
            with open(args.baseline) as f:
                payload = json.load(f)
        payload["context"] = report.get("context", {})
        payload.setdefault("times_ns", {})
        payload["times_ns"][BARE] = bare
        payload["times_ns"][idle_name] = idle
        with open(args.baseline, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print("recorded baseline -> %s" % args.baseline)

    status = 0
    if overhead > args.threshold:
        print("FAIL: disabled %s costs more than %.1f%%"
              % ("observability" if args.obs else "telemetry",
                 args.threshold))
        status = 1

    # Advisory absolute comparison against the recorded reference run.
    if not args.record and os.path.exists(args.baseline):
        with open(args.baseline) as f:
            recorded = json.load(f).get("times_ns", {})
        for name in (BARE, idle_name):
            if name not in recorded:
                continue
            drift = 100.0 * (times[name] - recorded[name]) \
                / recorded[name]
            print("baseline drift %-28s %+.1f%%" % (name, drift))
            if drift > args.baseline_tolerance:
                msg = ("recorded-baseline regression on %s "
                       "(%.1f%% > %.1f%%)"
                       % (name, drift, args.baseline_tolerance))
                if args.enforce_baseline:
                    print("FAIL: " + msg)
                    status = 1
                else:
                    print("warn: " + msg
                          + " (advisory; different machines differ)")

    if status == 0:
        print("OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
