#!/usr/bin/env python3
"""Render footprint.timeseries/1 streams as ASCII sparklines or PNG.

Reads the windowed flight-recorder stream written by
``simulate --timeseries`` (DESIGN.md §15) and renders the run's
trajectory: accepted/offered throughput, windowed latency percentiles,
in-flight backlog, and the per-regime VC-allocation grant mix that
makes Footprint's Algorithm-1 regime transitions visible over time.
ASCII sparklines on stdout by default; a multi-panel PNG when --png is
given and matplotlib is installed (the import is gated, so the ASCII
path has no dependencies beyond the standard library).

Usage:
  tools/render_timeseries.py timeseries.jsonl
  tools/render_timeseries.py timeseries.jsonl --metric p99
  tools/render_timeseries.py timeseries.jsonl --regimes
  tools/render_timeseries.py timeseries.jsonl --png run.png

Metrics: accepted (default), offered, p50, p99, p999, mean, in_flight,
active_nodes, packets, va_fails, watchdog_events.
"""

import argparse
import json
import sys

SPARKS = "▁▂▃▄▅▆▇█"
VA_REGIMES = ["escape", "busy", "footprint", "idle", "reclaim"]

METRICS = {
    "accepted": lambda w: w["accepted_rate"],
    "offered": lambda w: w["offered_rate"],
    "p50": lambda w: w["latency"]["p50"],
    "p99": lambda w: w["latency"]["p99"],
    "p999": lambda w: w["latency"]["p999"],
    "mean": lambda w: w["latency"]["mean"],
    "in_flight": lambda w: w["in_flight"],
    "active_nodes": lambda w: w["active_nodes"],
    "packets": lambda w: w["packets"],
    "va_fails": lambda w: w["va_fails"],
    "watchdog_events": lambda w: w["watchdog_events"],
}


def load_stream(path):
    with open(path) as f:
        lines = [ln for ln in (s.strip() for s in f) if ln]
    if not lines:
        raise SystemExit("error: %s is empty" % path)
    header = json.loads(lines[0])
    if header.get("schema") != "footprint.timeseries/1":
        raise SystemExit("error: %s is not a footprint.timeseries/1 "
                         "stream (schema %r)"
                         % (path, header.get("schema")))
    windows = [json.loads(ln) for ln in lines[1:]]
    if not windows:
        raise SystemExit("error: %s has no window records" % path)
    return header, windows


def sparkline(values):
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return SPARKS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(SPARKS) - 1))
        out.append(SPARKS[max(0, min(len(SPARKS) - 1, idx))])
    return "".join(out)


def render_metric(windows, metric):
    values = [METRICS[metric](w) for w in windows]
    span = "cycles %d..%d" % (windows[0]["start"], windows[-1]["end"])
    print("%-12s %s" % (metric, sparkline(values)))
    print("%-12s min %.4g  max %.4g  last %.4g  (%d windows, %s)"
          % ("", min(values), max(values), values[-1], len(values),
             span))


def render_regimes(windows):
    """Stacked per-regime share of VC-allocation grants per window."""
    print("va regime mix (share of grants per window)")
    for regime in VA_REGIMES:
        shares = []
        for w in windows:
            total = sum(w["va_grants"][r] for r in VA_REGIMES)
            shares.append(w["va_grants"][regime] / total
                          if total > 0 else 0.0)
        print("  %-10s %s  mean %.3f"
              % (regime, sparkline(shares),
                 sum(shares) / len(shares)))


def render_png(header, windows, path):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("error: --png needs matplotlib (not "
                         "installed); the ASCII output has no "
                         "dependencies")

    x = [w["end"] for w in windows]
    fig, axes = plt.subplots(3, 1, figsize=(10, 9), sharex=True)

    ax = axes[0]
    ax.plot(x, [w["offered_rate"] for w in windows], label="offered")
    ax.plot(x, [w["accepted_rate"] for w in windows], label="accepted")
    ax.set_ylabel("flits/node/cycle")
    ax.legend(loc="best")
    ax.set_title("throughput")

    ax = axes[1]
    for key in ("p50", "p99", "p999"):
        ax.plot(x, [w["latency"][key] for w in windows], label=key)
    ax.set_ylabel("cycles")
    ax.legend(loc="best")
    ax.set_title("windowed latency percentiles")

    ax = axes[2]
    shares = {r: [] for r in VA_REGIMES}
    for w in windows:
        total = sum(w["va_grants"][r] for r in VA_REGIMES)
        for r in VA_REGIMES:
            shares[r].append(w["va_grants"][r] / total
                             if total > 0 else 0.0)
    ax.stackplot(x, [shares[r] for r in VA_REGIMES],
                 labels=VA_REGIMES)
    ax.set_ylabel("grant share")
    ax.set_xlabel("cycle")
    ax.legend(loc="best", fontsize="small")
    ax.set_title("VC-allocation regime mix")

    mesh = header.get("mesh", {})
    fig.suptitle("footprint.timeseries/1  %sx%s mesh"
                 % (mesh.get("width", "?"), mesh.get("height", "?")))
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    print("wrote %s" % path)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("stream", help="footprint.timeseries/1 JSONL file")
    ap.add_argument("--metric", default=None,
                    choices=sorted(METRICS),
                    help="render one metric (default: throughput + "
                         "p99 summary)")
    ap.add_argument("--regimes", action="store_true",
                    help="render the per-regime VA grant mix")
    ap.add_argument("--png", metavar="FILE",
                    help="write a multi-panel PNG (needs matplotlib)")
    args = ap.parse_args()

    header, windows = load_stream(args.stream)
    if args.png:
        render_png(header, windows, args.png)
        return 0

    meta = header.get("meta", {})
    mesh = header.get("mesh", {})
    print("%s  %sx%s mesh  interval %s  seed %s"
          % (args.stream, mesh.get("width", "?"),
             mesh.get("height", "?"), header.get("interval", "?"),
             meta.get("seed", "?")))
    if args.metric:
        render_metric(windows, args.metric)
    else:
        for metric in ("offered", "accepted", "p99", "in_flight"):
            render_metric(windows, metric)
    if args.regimes or not args.metric:
        render_regimes(windows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
