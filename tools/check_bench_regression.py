#!/usr/bin/env python3
"""Validate and gate footprint.bench/1 benchmark artifacts.

Two modes:

1. Baseline gate (default) — validate a bench_results.json produced by
   the sweep runner against the schema, then compare its per-cell
   saturation throughput and jobs/sec against a recorded baseline:

       check_bench_regression.py bench_results.json \
           --baseline bench/micro_baseline.json

   The baseline file holds the reference under a "sweep_baseline" key
   (so the same file can carry the micro-benchmark baseline used by
   check_telemetry_overhead.py). Saturation throughput drifting more
   than --max-sat-drift percent from the baseline in either direction
   fails the gate: simulation results are deterministic, so any drift
   is a behavioural change, not noise. jobs/sec is machine-dependent
   and only gates on *regression* beyond --max-speed-regress percent.

2. Determinism compare (--compare) — require two or more artifacts to
   be byte-identical after removing the "timing" object (the only
   section allowed to depend on thread count, schedule, or wall
   clock):

       check_bench_regression.py --compare j1.json j4.json j8.json

3. Micro-cycle gate (--micro) — validate a micro_cycle.json produced
   by bench/micro_cycle and compare it against the baseline recorded
   under "micro_cycle_baseline": per-config checksums must match the
   baseline EXACTLY (they are machine-independent; any difference is a
   behavioural change), and cycles/sec only gates on regression beyond
   --max-speed-regress percent (wall clock is machine-dependent):

       check_bench_regression.py --micro micro_cycle.json \
           --baseline bench/micro_baseline.json

Exit status is 0 when every check passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "footprint.bench/1"

RESULT_FIELDS = {
    "job": int,
    "mesh": str,
    "routing": str,
    "traffic": str,
    "replicate": int,
    "probe": bool,
    "seed": int,
    "offered": (int, float),
    "accepted": (int, float),
    "latency": (int, float),
    "p50": (int, float),
    "p99": (int, float),
    "hops": (int, float),
    "cycles": int,
    "drained": bool,
    "saturated": bool,
    "stall": str,
}

SATURATION_FIELDS = {
    "mesh": str,
    "routing": str,
    "traffic": str,
    "throughput": (int, float),
    "zero_load_latency": (int, float),
}


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")
    if not isinstance(doc, dict):
        fail(f"{path}: top-level value must be an object")
    return doc


def check_fields(path: str, where: str, entry: dict, spec: dict) -> None:
    for key, types in spec.items():
        if key not in entry:
            fail(f"{path}: {where} missing field '{key}'")
        if not isinstance(entry[key], types):
            fail(
                f"{path}: {where} field '{key}' has type "
                f"{type(entry[key]).__name__}"
            )
    # bool is an int subclass in Python; keep int fields strictly int.
    for key, types in spec.items():
        if types is int and isinstance(entry[key], bool):
            fail(f"{path}: {where} field '{key}' must be an integer")


def validate(path: str, doc: dict) -> None:
    """Validate a document against the footprint.bench/1 schema."""
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want '{SCHEMA}'")
    for key in ("run", "sweep", "results", "saturation"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")

    run = doc["run"]
    for key in ("git", "config_hash", "base_seed", "total_jobs"):
        if key not in run:
            fail(f"{path}: run missing field '{key}'")
    if run["total_jobs"] != len(doc["results"]):
        fail(
            f"{path}: run.total_jobs={run['total_jobs']} but results "
            f"has {len(doc['results'])} entries"
        )

    sweep = doc["sweep"]
    for key in ("rates", "routings", "meshes", "traffics", "seeds"):
        if key not in sweep:
            fail(f"{path}: sweep missing field '{key}'")

    for i, entry in enumerate(doc["results"]):
        check_fields(path, f"results[{i}]", entry, RESULT_FIELDS)
    seeds = [e["seed"] for e in doc["results"]]
    if len(set(seeds)) != len(seeds):
        fail(f"{path}: job seeds are not unique")

    for i, entry in enumerate(doc["saturation"]):
        check_fields(path, f"saturation[{i}]", entry, SATURATION_FIELDS)
    expected_cells = (
        len(sweep["meshes"]) * len(sweep["routings"]) * len(sweep["traffics"])
    )
    if len(doc["saturation"]) != expected_cells:
        fail(
            f"{path}: saturation has {len(doc['saturation'])} entries, "
            f"want {expected_cells} (meshes x routings x traffics)"
        )

    if "timing" in doc:
        timing = doc["timing"]
        for key in ("jobs", "wall_seconds", "jobs_per_sec"):
            if key not in timing:
                fail(f"{path}: timing missing field '{key}'")
    print(
        f"OK: {path}: valid {SCHEMA} document "
        f"({len(doc['results'])} results, "
        f"{len(doc['saturation'])} saturation cells)"
    )


def canonical(doc: dict) -> str:
    """Serialize a document with timing metadata removed."""
    stripped = {k: v for k, v in doc.items() if k != "timing"}
    return json.dumps(stripped, sort_keys=True, indent=1)


def compare_mode(paths: list[str]) -> None:
    docs = [load(p) for p in paths]
    for path, doc in zip(paths, docs):
        validate(path, doc)
    reference = canonical(docs[0])
    for path, doc in zip(paths[1:], docs[1:]):
        if canonical(doc) != reference:
            # Locate the first differing section for the error message.
            ref_doc = {k: v for k, v in docs[0].items() if k != "timing"}
            new_doc = {k: v for k, v in doc.items() if k != "timing"}
            for key in sorted(set(ref_doc) | set(new_doc)):
                if ref_doc.get(key) != new_doc.get(key):
                    fail(
                        f"{path} differs from {paths[0]} in section "
                        f"'{key}' (payloads must be identical modulo "
                        f"'timing')"
                    )
            fail(f"{path} differs from {paths[0]}")
    print(
        f"OK: {len(paths)} artifacts are identical modulo timing "
        f"metadata"
    )


MICRO_RESULT_FIELDS = {
    "name": str,
    "routing": str,
    "mode": str,
    "threads": int,
    "load": (int, float),
    "cycles": int,
    "wall_seconds": (int, float),
    "cycles_per_sec": (int, float),
    "full_cycles_per_sec": (int, float),
    "speedup": (int, float),
    "checksum": str,
}

# Row fields that newer producers emit but older artifacts may lack;
# validated for type when present.
MICRO_OPTIONAL_FIELDS = {
    "topology": str,
}


def warn_build_type(path: str, doc: dict, base_path: str | None,
                    base_doc: dict | None) -> None:
    """Warn when either side of a comparison was built non-Release.

    Checksums are build-type independent, so the gate itself still
    runs; but cycles/sec from a Debug/RelWithDebInfo build is not
    comparable to a Release baseline, so flag it loudly instead of
    letting a bogus speed regression (or a masked real one) through.
    """
    meta = doc.get("meta", {}) or doc.get("run", {})
    cand = meta.get("build_type")
    if cand is not None and cand.lower() != "release":
        print(
            f"WARNING: {path}: candidate built as '{cand}' (not "
            f"Release) — cycles/sec is not comparable to a Release "
            f"baseline",
            file=sys.stderr,
        )
    if base_doc is None:
        return
    ctx = base_doc.get("context", {})
    base = ctx.get("library_build_type")
    if base is not None and base.lower() != "release":
        print(
            f"WARNING: {base_path}: baseline recorded from a '{base}' "
            f"build — re-pin it from a Release build",
            file=sys.stderr,
        )


def micro_group(name: str) -> str:
    """Config group of a result row: 'sat16/dor@t4' -> 'sat16/dor'."""
    return name.split("@", 1)[0]


def check_thread_determinism(path: str, doc: dict) -> None:
    """Fail if any thread count's checksum diverges within a config.

    Rows sharing a base name (modulo the '@tN' suffix) are the same
    simulation run under different step modes / thread counts, so
    their checksums must be identical: parallel sharded stepping is
    required to be bit-identical to serial stepping.
    """
    groups: dict[str, list[dict]] = {}
    for entry in doc["results"]:
        groups.setdefault(micro_group(entry["name"]), []).append(entry)
    divergent = []
    for group, entries in sorted(groups.items()):
        sums = {e["checksum"] for e in entries}
        if len(sums) > 1:
            detail = ", ".join(
                f"{e['name']}={e['checksum']}" for e in entries
            )
            divergent.append(f"{group}: {detail}")
    if divergent:
        for msg in divergent:
            print(f"FAIL: {path}: checksum divergence across thread "
                  f"counts in {msg}", file=sys.stderr)
        sys.exit(1)
    multi = sum(1 for entries in groups.values() if len(entries) > 1)
    print(
        f"OK: {path}: checksums identical across step modes and "
        f"thread counts ({multi} configs with a thread axis)"
    )


def print_thread_scaling(doc: dict) -> None:
    """Summarize sharded cycles/sec against the serial row per config."""
    serial = {
        e["name"]: e for e in doc["results"] if e["mode"] != "sharded"
    }
    rows = [e for e in doc["results"] if e["mode"] == "sharded"]
    if not rows:
        return
    print(f"\n{'config':>22} {'threads':>7} {'c/s':>10} {'vs serial':>9}")
    for e in rows:
        ref = serial.get(micro_group(e["name"]))
        ref_cps = ref["cycles_per_sec"] if ref else 0.0
        scale = e["cycles_per_sec"] / ref_cps if ref_cps else 0.0
        print(
            f"{micro_group(e['name']):>22} {e['threads']:>7} "
            f"{e['cycles_per_sec']:>10.0f} {scale:>8.2f}x"
        )


def thread_efficiency(doc: dict,
                      min_t8_speedup: float | None) -> list[str]:
    """Report parallel efficiency of sharded rows against their @t1 row.

    For every sharded row with threads > 1 (skip-ahead rows excluded —
    their wall clock measures the fast path, not the worker pool), the
    reference is the same config's single-thread sharded row ('@t1'):
    speedup = cycles/sec over the @t1 row, efficiency = speedup /
    threads. Efficiency below 0.5 earns a stderr warning; with
    --min-t8-speedup set, an 8-thread row whose speedup falls short is
    a returned failure. Single-core machines should leave the gate
    unset — there is no parallelism to measure.
    """
    t1 = {
        micro_group(e["name"]): e
        for e in doc["results"]
        if e["mode"] == "sharded"
        and e["threads"] == 1
        and not e["name"].endswith("skip")
    }
    rows = [
        e for e in doc["results"]
        if e["mode"] == "sharded"
        and e["threads"] > 1
        and not e["name"].endswith("skip")
    ]
    failures: list[str] = []
    if not rows:
        return failures
    print(
        f"\n{'config':>22} {'topology':>8} {'threads':>7} "
        f"{'c/s':>10} {'vs @t1':>7} {'eff':>6}"
    )
    for e in rows:
        group = micro_group(e["name"])
        ref = t1.get(group)
        ref_cps = ref["cycles_per_sec"] if ref else 0.0
        speedup = e["cycles_per_sec"] / ref_cps if ref_cps else 0.0
        eff = speedup / e["threads"]
        print(
            f"{group:>22} {e.get('topology', '-'):>8} "
            f"{e['threads']:>7} {e['cycles_per_sec']:>10.0f} "
            f"{speedup:>6.2f}x {eff:>6.2f}"
        )
        if ref_cps and eff < 0.5:
            print(
                f"WARNING: {e['name']}: parallel efficiency "
                f"{eff:.2f} below 0.5 ({speedup:.2f}x on "
                f"{e['threads']} threads)",
                file=sys.stderr,
            )
        if (
            min_t8_speedup is not None
            and e["threads"] == 8
            and ref_cps
            and speedup < min_t8_speedup
        ):
            failures.append(
                f"{e['name']}: speedup {speedup:.2f}x over @t1 is "
                f"below --min-t8-speedup {min_t8_speedup:.2f}x"
            )
    return failures


def validate_micro(path: str, doc: dict) -> None:
    """Validate a micro_cycle document (kind=micro_cycle)."""
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want '{SCHEMA}'")
    if doc.get("kind") != "micro_cycle":
        fail(f"{path}: kind is {doc.get('kind')!r}, want 'micro_cycle'")
    for key in ("run", "results"):
        if key not in doc:
            fail(f"{path}: missing top-level key '{key}'")
    for key in ("mesh", "seed", "cycles"):
        if key not in doc["run"]:
            fail(f"{path}: run missing field '{key}'")
    if not doc["results"]:
        fail(f"{path}: results is empty")
    for i, entry in enumerate(doc["results"]):
        check_fields(path, f"results[{i}]", entry, MICRO_RESULT_FIELDS)
        present = {
            k: t for k, t in MICRO_OPTIONAL_FIELDS.items() if k in entry
        }
        check_fields(path, f"results[{i}]", entry, present)
    names = [e["name"] for e in doc["results"]]
    if len(set(names)) != len(names):
        fail(f"{path}: result names are not unique")
    print(
        f"OK: {path}: valid {SCHEMA} micro_cycle document "
        f"({len(doc['results'])} configs)"
    )


def micro_mode(args: argparse.Namespace) -> None:
    doc = load(args.micro)
    validate_micro(args.micro, doc)
    check_thread_determinism(args.micro, doc)
    print_thread_scaling(doc)
    scaling_failures = thread_efficiency(doc, args.min_t8_speedup)
    if args.baseline is None:
        warn_build_type(args.micro, doc, None, None)
        if scaling_failures:
            for msg in scaling_failures:
                print(f"FAIL: {msg}", file=sys.stderr)
            sys.exit(1)
        return

    base_doc = load(args.baseline)
    warn_build_type(args.micro, doc, args.baseline, base_doc)
    baseline = base_doc.get("micro_cycle_baseline")
    if baseline is None:
        fail(f"{args.baseline}: missing key 'micro_cycle_baseline'")

    base = {e["name"]: e for e in baseline.get("results", [])}
    cur = {e["name"]: e for e in doc["results"]}
    if set(base) != set(cur):
        missing = set(base) - set(cur)
        extra = set(cur) - set(base)
        fail(
            f"micro_cycle configs differ from baseline "
            f"(missing={sorted(missing)}, extra={sorted(extra)}) — "
            f"re-record the baseline if the config grid changed"
        )

    print(
        f"\n{'config':>18} {'baseline c/s':>13} {'current c/s':>12} "
        f"{'change':>8}  checksum"
    )
    failures = list(scaling_failures)
    for name in sorted(base):
        ref = base[name]
        now = cur[name]
        mark = "ok"
        if now["checksum"] != ref["checksum"]:
            mark = "MISMATCH"
            failures.append(
                f"{name}: checksum {ref['checksum']} -> "
                f"{now['checksum']} (simulation results changed)"
            )
        ref_cps = ref.get("cycles_per_sec", 0.0)
        now_cps = now["cycles_per_sec"]
        change = (
            100.0 * (now_cps - ref_cps) / ref_cps if ref_cps else 0.0
        )
        if ref_cps and -change > args.max_speed_regress:
            failures.append(
                f"{name}: cycles/sec regressed {-change:.1f}% "
                f"({ref_cps:.0f} -> {now_cps:.0f}, "
                f"> {args.max_speed_regress:.1f}%)"
            )
        print(
            f"{name:>18} {ref_cps:>13.0f} {now_cps:>12.0f} "
            f"{change:>+7.1f}%  {mark}"
        )

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        sys.exit(1)
    print("OK: checksums match baseline; speed within threshold")


def cell_key(entry: dict) -> tuple:
    return (entry["mesh"], entry["routing"], entry["traffic"])


def baseline_mode(args: argparse.Namespace) -> None:
    doc = load(args.results)
    validate(args.results, doc)
    if args.baseline is None:
        return

    base_doc = load(args.baseline)
    baseline = base_doc.get(args.baseline_key)
    if baseline is None:
        fail(f"{args.baseline}: missing key '{args.baseline_key}'")

    base_cells = {cell_key(e): e for e in baseline.get("saturation", [])}
    new_cells = {cell_key(e): e for e in doc["saturation"]}
    if set(base_cells) != set(new_cells):
        missing = set(base_cells) - set(new_cells)
        extra = set(new_cells) - set(base_cells)
        fail(
            f"saturation cells differ from baseline "
            f"(missing={sorted(missing)}, extra={sorted(extra)}) — "
            f"re-record the baseline if the pinned sweep changed"
        )

    print(
        f"\n{'mesh':>8} {'routing':>12} {'traffic':>10} "
        f"{'baseline':>10} {'current':>10} {'drift':>8}"
    )
    worst = 0.0
    failures = []
    for key in sorted(base_cells):
        ref = base_cells[key]["throughput"]
        cur = new_cells[key]["throughput"]
        drift = 100.0 * (cur - ref) / ref if ref else float("inf")
        worst = max(worst, abs(drift))
        mark = ""
        if abs(drift) > args.max_sat_drift:
            mark = "  <-- FAIL"
            failures.append(
                f"{'/'.join(key)}: saturation {ref:.4f} -> {cur:.4f} "
                f"({drift:+.1f}% > {args.max_sat_drift:.1f}%)"
            )
        print(
            f"{key[0]:>8} {key[1]:>12} {key[2]:>10} "
            f"{ref:>10.4f} {cur:>10.4f} {drift:>+7.1f}%{mark}"
        )
    print(
        f"\nworst saturation drift: {worst:.2f}% "
        f"(threshold {args.max_sat_drift:.1f}%)"
    )

    base_speed = baseline.get("jobs_per_sec")
    cur_speed = doc.get("timing", {}).get("jobs_per_sec")
    if base_speed and cur_speed:
        regress = 100.0 * (base_speed - cur_speed) / base_speed
        print(
            f"throughput: baseline {base_speed:.2f} jobs/s, current "
            f"{cur_speed:.2f} jobs/s ({-regress:+.1f}%)"
        )
        if regress > args.max_speed_regress:
            failures.append(
                f"jobs/sec regressed {regress:.1f}% "
                f"(> {args.max_speed_regress:.1f}%)"
            )
    elif base_speed:
        print(
            "note: results lack timing.jobs_per_sec; skipping speed "
            "gate"
        )

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        sys.exit(1)
    print("OK: within baseline thresholds")


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "results",
        nargs="?",
        help="bench_results.json to validate and gate",
    )
    parser.add_argument(
        "--baseline",
        help="baseline JSON file (e.g. bench/micro_baseline.json); "
        "omit to only validate the schema",
    )
    parser.add_argument(
        "--baseline-key",
        default="sweep_baseline",
        help="key holding the sweep baseline inside the baseline file",
    )
    parser.add_argument(
        "--max-sat-drift",
        type=float,
        default=5.0,
        help="max allowed saturation drift in percent, either "
        "direction (default 5)",
    )
    parser.add_argument(
        "--max-speed-regress",
        type=float,
        default=20.0,
        help="max allowed jobs/sec regression in percent (default 20)",
    )
    parser.add_argument(
        "--min-t8-speedup",
        type=float,
        default=None,
        help="micro mode: fail when an 8-thread sharded row's speedup "
        "over its single-thread sharded row falls below this factor; "
        "leave unset on single-core machines (no parallelism to "
        "measure)",
    )
    parser.add_argument(
        "--compare",
        nargs="+",
        metavar="FILE",
        help="determinism mode: require all FILEs to be identical "
        "after stripping the 'timing' object",
    )
    parser.add_argument(
        "--micro",
        metavar="FILE",
        help="micro-cycle mode: validate a bench/micro_cycle artifact "
        "and gate its checksums (exact) and cycles/sec (regression "
        "only) against the 'micro_cycle_baseline' key of --baseline",
    )
    args = parser.parse_args()

    if args.compare:
        if args.results:
            args.compare.insert(0, args.results)
        if len(args.compare) < 2:
            parser.error("--compare needs at least two files")
        compare_mode(args.compare)
    elif args.micro:
        micro_mode(args)
    elif args.results:
        baseline_mode(args)
    else:
        parser.error(
            "give a results file, --micro FILE, or --compare FILE "
            "FILE..."
        )


if __name__ == "__main__":
    main()
