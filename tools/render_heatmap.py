#!/usr/bin/env python3
"""Render footprint.heatmap/1 documents as ASCII or PNG mesh heatmaps.

Reads the windowed spatial grids written by ``simulate --heatmap``
(DESIGN.md §14) and renders one metric of one window as a W x H mesh
heatmap: ASCII shading on stdout by default, or a PNG when --png is
given and matplotlib is installed (the import is gated, so the ASCII
path has no dependencies beyond the standard library).

Usage:
  tools/render_heatmap.py heatmap.json
  tools/render_heatmap.py heatmap.json --metric link_util:east
  tools/render_heatmap.py heatmap.json --window 0 --all-windows
  tools/render_heatmap.py heatmap.json --metric fp_occ --png fp.png

Metrics: vc_occ (default), fp_occ, esc_occ, inj_backlog, inject_util,
eject_util, and link_util:<east|west|north|south>.
"""

import argparse
import json
import sys

SHADES = " .:-=+*#%@"


def get_grid(window, metric):
    if metric.startswith("link_util:"):
        direction = metric.split(":", 1)[1]
        try:
            return window["link_util"][direction]
        except KeyError:
            raise SystemExit("error: unknown link direction %r "
                             "(east/west/north/south)" % direction)
    if metric == "link_util":
        raise SystemExit("error: link_util needs a direction, e.g. "
                         "--metric link_util:east")
    if metric not in window:
        raise SystemExit("error: unknown metric %r; document has: %s"
                         % (metric,
                            ", ".join(k for k in sorted(window)
                                      if isinstance(window[k], list))))
    return window[metric]


def render_ascii(grid, width, height, title, scale_max):
    lines = [title]
    for y in range(height):
        row = []
        for x in range(width):
            v = grid[y * width + x]
            if scale_max <= 0:
                idx = 0
            else:
                idx = int(round(v / scale_max * (len(SHADES) - 1)))
                idx = max(0, min(len(SHADES) - 1, idx))
            row.append(SHADES[idx] * 2)
        lines.append("  " + "".join(row))
    lines.append("  scale: '%s' = 0 .. '%s' = %.4g"
                 % (SHADES[0], SHADES[-1], scale_max))
    return "\n".join(lines)


def render_png(grids, width, height, metric, out_path):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("error: --png needs matplotlib; install it or "
                         "use the ASCII output")

    cols = min(len(grids), 4)
    rows = (len(grids) + cols - 1) // cols
    fig, axes = plt.subplots(rows, cols, squeeze=False,
                             figsize=(3.2 * cols, 3.0 * rows))
    vmax = max((max(g) for _, g in grids), default=1.0) or 1.0
    for i, (title, grid) in enumerate(grids):
        ax = axes[i // cols][i % cols]
        data = [[grid[y * width + x] for x in range(width)]
                for y in range(height)]
        im = ax.imshow(data, origin="lower", cmap="inferno",
                       vmin=0.0, vmax=vmax)
        ax.set_title(title, fontsize=8)
        ax.set_xticks([])
        ax.set_yticks([])
    for i in range(len(grids), rows * cols):
        axes[i // cols][i % cols].axis("off")
    fig.colorbar(im, ax=[a for row in axes for a in row],
                 label=metric, shrink=0.8)
    fig.savefig(out_path, dpi=150, bbox_inches="tight")
    print("wrote %s (%d window(s), metric %s)"
          % (out_path, len(grids), metric))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("heatmap", help="footprint.heatmap/1 document")
    ap.add_argument("--metric", default="vc_occ",
                    help="metric to render (default vc_occ); "
                         "link_util needs a direction, e.g. "
                         "link_util:east")
    ap.add_argument("--window", type=int, default=-1,
                    help="window index (default -1 = last)")
    ap.add_argument("--all-windows", action="store_true",
                    help="render every window (time-lapse)")
    ap.add_argument("--png", metavar="FILE",
                    help="write a PNG instead of ASCII "
                         "(needs matplotlib)")
    args = ap.parse_args()

    with open(args.heatmap) as f:
        doc = json.load(f)
    if doc.get("schema") != "footprint.heatmap/1":
        raise SystemExit("error: %s is not a footprint.heatmap/1 "
                         "document" % args.heatmap)
    width = doc["mesh"]["width"]
    height = doc["mesh"]["height"]
    windows = doc["windows"]
    if not windows:
        raise SystemExit("error: document has no windows")

    if args.all_windows:
        selected = list(enumerate(windows))
    else:
        try:
            idx = args.window if args.window >= 0 \
                else len(windows) + args.window
            selected = [(idx, windows[idx])]
        except IndexError:
            raise SystemExit("error: window %d out of range (%d "
                             "windows)" % (args.window, len(windows)))

    grids = []
    for idx, w in selected:
        grid = get_grid(w, args.metric)
        grids.append(("%s cycles [%d, %d)"
                      % (args.metric, w["start"], w["end"]), grid))

    if args.png:
        render_png(grids, width, height, args.metric, args.png)
        return 0

    # Shared scale across the selection so a time-lapse is comparable.
    scale_max = max((max(g) for _, g in grids), default=0.0)
    print("%s  mesh %dx%d  (%d of %d windows)"
          % (args.heatmap, width, height, len(grids), len(windows)))
    for title, grid in grids:
        print(render_ascii(grid, width, height, title, scale_max))
    return 0


if __name__ == "__main__":
    sys.exit(main())
