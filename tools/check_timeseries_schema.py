#!/usr/bin/env python3
"""Validate footprint.timeseries/1 JSONL streams.

Structural schema validation of the flight-recorder stream written by
``simulate --timeseries`` (DESIGN.md §15), without external jsonschema
dependencies. The CI workflow runs it against a stream produced by a
real simulation run, so a field rename or type change in the C++
emitter fails the build instead of silently breaking downstream
consumers (tools/render_timeseries.py, dashboards, tail -f watchers).

The stream is JSONL: line 1 is the header object (schema, run
metadata, mesh geometry, window interval, detector parameters); every
following line is one closed window record. Windows must tile the run
(each start equals the previous end), indices must be consecutive, and
the per-regime VC-allocation grant counts must name exactly the five
Priority regimes.

Usage:
  tools/check_timeseries_schema.py timeseries.jsonl
  tools/check_timeseries_schema.py timeseries.jsonl --min-windows 3
"""

import argparse
import json
import sys

TIMESERIES_SCHEMA = "footprint.timeseries/1"

VA_REGIMES = ["escape", "busy", "footprint", "idle", "reclaim"]
LATENCY_FIELDS = ["count", "mean", "p50", "p99", "p999", "max"]


class SchemaError(Exception):
    pass


def expect(cond, path, msg):
    if not cond:
        raise SchemaError("%s: %s" % (path, msg))


def check_number(value, path, minimum=None):
    expect(isinstance(value, (int, float))
           and not isinstance(value, bool), path, "must be a number")
    if minimum is not None:
        expect(value >= minimum, path, "must be >= %s" % minimum)


def check_meta(meta, path):
    expect(isinstance(meta, dict), path, "must be an object")
    for key in ("seed", "config_hash", "git"):
        expect(key in meta, path, "missing run-metadata field %r" % key)


def check_header(doc, path):
    expect(doc.get("schema") == TIMESERIES_SCHEMA, path,
           "schema is %r, expected %r" % (doc.get("schema"),
                                          TIMESERIES_SCHEMA))
    if "meta" in doc:
        check_meta(doc["meta"], path + ".meta")
    mesh = doc.get("mesh")
    expect(isinstance(mesh, dict), path + ".mesh", "must be an object")
    for key in ("width", "height"):
        expect(isinstance(mesh.get(key), int) and mesh[key] >= 1,
               "%s.mesh.%s" % (path, key),
               "must be a positive integer")
    check_number(doc.get("interval"), path + ".interval", minimum=1)
    check_number(doc.get("steady_windows"), path + ".steady_windows",
                 minimum=2)
    check_number(doc.get("steady_tolerance"),
                 path + ".steady_tolerance")
    expect(doc["steady_tolerance"] > 0.0, path + ".steady_tolerance",
           "must be positive")


def check_window(w, path, index, prev_end):
    expect(isinstance(w, dict), path, "must be an object")
    for key in ("window", "start", "end", "offered_flits",
                "accepted_flits", "packets", "offered_rate",
                "accepted_rate", "latency", "in_flight",
                "active_nodes", "va_grants", "va_fails",
                "watchdog_events"):
        expect(key in w, path, "missing field %r" % key)
    expect(w["window"] == index, path,
           "window index %s, expected %s" % (w["window"], index))
    check_number(w["start"], path + ".start", minimum=0)
    check_number(w["end"], path + ".end", minimum=0)
    expect(w["end"] > w["start"], path,
           "window must cover at least one cycle")
    if prev_end is not None:
        expect(w["start"] == prev_end, path,
               "windows must tile the run (start %s != previous end "
               "%s)" % (w["start"], prev_end))
    for key in ("offered_flits", "accepted_flits", "packets",
                "va_fails", "watchdog_events"):
        check_number(w[key], "%s.%s" % (path, key), minimum=0)
    for key in ("offered_rate", "accepted_rate"):
        check_number(w[key], "%s.%s" % (path, key), minimum=0.0)
    check_number(w["in_flight"], path + ".in_flight", minimum=0)
    check_number(w["active_nodes"], path + ".active_nodes", minimum=0)

    lat = w["latency"]
    expect(isinstance(lat, dict), path + ".latency",
           "must be an object")
    for key in LATENCY_FIELDS:
        check_number(lat.get(key), "%s.latency.%s" % (path, key),
                     minimum=0)
    expect(lat["p50"] <= lat["p99"] <= lat["p999"], path + ".latency",
           "percentiles must be monotone")

    grants = w["va_grants"]
    expect(isinstance(grants, dict), path + ".va_grants",
           "must be an object")
    expect(sorted(grants.keys()) == sorted(VA_REGIMES),
           path + ".va_grants",
           "regimes %r != %r" % (sorted(grants.keys()),
                                 sorted(VA_REGIMES)))
    for regime in VA_REGIMES:
        check_number(grants[regime],
                     "%s.va_grants.%s" % (path, regime), minimum=0)
    return w["end"]


def check_stream(lines, path):
    expect(len(lines) >= 1, path, "stream is empty (no header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        raise SchemaError("%s:1: invalid JSON: %s" % (path, e))
    check_header(header, path + ":1")

    prev_end = None
    for i, line in enumerate(lines[1:]):
        lpath = "%s:%d" % (path, i + 2)
        try:
            w = json.loads(line)
        except json.JSONDecodeError as e:
            raise SchemaError("%s: invalid JSON: %s" % (lpath, e))
        prev_end = check_window(w, lpath, i, prev_end)
    return len(lines) - 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("stream", help="footprint.timeseries/1 JSONL file")
    ap.add_argument("--min-windows", type=int, default=1,
                    help="fail unless at least N window records "
                         "(default 1)")
    args = ap.parse_args()

    try:
        with open(args.stream) as f:
            lines = [ln for ln in (s.strip() for s in f) if ln]
        windows = check_stream(lines, args.stream)
        if windows < args.min_windows:
            raise SchemaError(
                "%s: only %d window(s), need >= %d"
                % (args.stream, windows, args.min_windows))
        print("OK %s: %s, %d window(s)"
              % (args.stream, TIMESERIES_SCHEMA, windows))
        return 0
    except SchemaError as e:
        print("FAIL: %s" % e)
        return 1
    except OSError as e:
        print("FAIL: %s" % e)
        return 1


if __name__ == "__main__":
    sys.exit(main())
