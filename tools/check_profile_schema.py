#!/usr/bin/env python3
"""Validate footprint.profile/1 and footprint.heatmap/1 documents.

Structural schema validation of the observability artifacts written by
``simulate --profile`` / ``--heatmap`` and ``micro_cycle --profile``
(DESIGN.md §14), without external jsonschema dependencies. The CI
workflow runs it against artifacts produced by a real simulation run,
so a field rename or type change in the C++ emitters fails the build
instead of silently breaking downstream consumers
(tools/render_heatmap.py, dashboards).

Usage:
  tools/check_profile_schema.py --profile profile.json
  tools/check_profile_schema.py --heatmap heatmap.json
  tools/check_profile_schema.py --profile p.json --heatmap h.json
"""

import argparse
import json
import sys

PROFILE_SCHEMA = "footprint.profile/1"
HEATMAP_SCHEMA = "footprint.heatmap/1"

PHASE_NAMES = ["inject", "drain", "compute", "transmit", "epilogue",
               "collect", "skip", "link"]
HEATMAP_METRICS = ["link_util", "inject_util", "eject_util", "vc_occ",
                   "fp_occ", "esc_occ", "inj_backlog"]
DIRS = ["east", "west", "north", "south"]


class SchemaError(Exception):
    pass


def expect(cond, path, msg):
    if not cond:
        raise SchemaError("%s: %s" % (path, msg))


def check_number(value, path, minimum=None):
    expect(isinstance(value, (int, float))
           and not isinstance(value, bool), path, "must be a number")
    if minimum is not None:
        expect(value >= minimum, path, "must be >= %s" % minimum)


def check_grid(grid, nodes, path):
    expect(isinstance(grid, list), path, "must be a list")
    expect(len(grid) == nodes, path,
           "grid has %d cells, mesh has %d nodes" % (len(grid), nodes))
    for i, v in enumerate(grid):
        check_number(v, "%s[%d]" % (path, i), minimum=0.0)


def check_meta(meta, path):
    expect(isinstance(meta, dict), path, "must be an object")
    for key in ("seed", "config_hash", "git"):
        expect(key in meta, path, "missing run-metadata field %r" % key)


def check_profile_row(row, path):
    expect(isinstance(row, dict), path, "must be an object")
    for key in ("name", "mode", "threads", "cycles", "wall_seconds",
                "cycles_per_sec", "phases", "sharded"):
        expect(key in row, path, "missing field %r" % key)
    expect(isinstance(row["name"], str) and row["name"], path,
           "name must be a non-empty string")
    expect(row["mode"] in ("full", "activity", "verify", "sharded"),
           path, "unknown mode %r" % row["mode"])
    expect(isinstance(row["threads"], int) and row["threads"] >= 1,
           path, "threads must be a positive integer")
    check_number(row["cycles"], path + ".cycles", minimum=0)
    check_number(row["wall_seconds"], path + ".wall_seconds",
                 minimum=0.0)
    check_number(row["cycles_per_sec"], path + ".cycles_per_sec",
                 minimum=0.0)

    phases = row["phases"]
    expect(isinstance(phases, list), path + ".phases",
           "must be a list")
    names = [p.get("name") for p in phases]
    expect(names == PHASE_NAMES, path + ".phases",
           "phase names %r != %r" % (names, PHASE_NAMES))
    for p in phases:
        ppath = "%s.phases[%s]" % (path, p.get("name"))
        check_number(p.get("seconds"), ppath + ".seconds", minimum=0.0)
        check_number(p.get("calls"), ppath + ".calls", minimum=0)
        check_number(p.get("share"), ppath + ".share", minimum=0.0)
        expect(p["share"] <= 1.0 + 1e-9, ppath + ".share",
               "must be <= 1")

    sharded = row["sharded"]
    if row["mode"] == "sharded":
        expect(isinstance(sharded, dict), path + ".sharded",
               "must be an object for sharded rows")
    if sharded is None:
        return
    spath = path + ".sharded"
    for key in ("shards", "chunks", "threads", "shard_busy_seconds",
                "imbalance_ratio", "barrier_wait"):
        expect(key in sharded, spath, "missing field %r" % key)
    expect(isinstance(sharded["shards"], int) and sharded["shards"] >= 1,
           spath + ".shards", "must be a positive integer")
    busy = sharded["shard_busy_seconds"]
    expect(isinstance(busy, list) and len(busy) == sharded["shards"],
           spath + ".shard_busy_seconds",
           "must list one entry per shard")
    for i, v in enumerate(busy):
        check_number(v, "%s.shard_busy_seconds[%d]" % (spath, i),
                     minimum=0.0)
    check_number(sharded["imbalance_ratio"],
                 spath + ".imbalance_ratio", minimum=0.0)
    bw = sharded["barrier_wait"]
    expect(isinstance(bw, dict), spath + ".barrier_wait",
           "must be an object")
    for key in ("count", "p50_ns", "p99_ns", "p999_ns", "max_ns"):
        check_number(bw.get(key), "%s.barrier_wait.%s" % (spath, key),
                     minimum=0)
    expect(bw["p50_ns"] <= bw["p99_ns"] <= bw["p999_ns"],
           spath + ".barrier_wait", "percentiles must be monotone")


def check_profile(doc, path):
    expect(doc.get("schema") == PROFILE_SCHEMA, path,
           "schema is %r, expected %r" % (doc.get("schema"),
                                          PROFILE_SCHEMA))
    if "meta" in doc:
        check_meta(doc["meta"], path + ".meta")
    rows = doc.get("rows")
    expect(isinstance(rows, list) and rows, path + ".rows",
           "must be a non-empty list")
    for i, row in enumerate(rows):
        check_profile_row(row, "%s.rows[%d]" % (path, i))
    return len(rows)


def check_heatmap(doc, path):
    expect(doc.get("schema") == HEATMAP_SCHEMA, path,
           "schema is %r, expected %r" % (doc.get("schema"),
                                          HEATMAP_SCHEMA))
    if "meta" in doc:
        check_meta(doc["meta"], path + ".meta")
    mesh = doc.get("mesh")
    expect(isinstance(mesh, dict), path + ".mesh",
           "must be an object")
    for key in ("width", "height"):
        expect(isinstance(mesh.get(key), int) and mesh[key] >= 1,
               "%s.mesh.%s" % (path, key),
               "must be a positive integer")
    nodes = mesh["width"] * mesh["height"]
    check_number(doc.get("window"), path + ".window", minimum=1)
    check_number(doc.get("sample_interval"), path + ".sample_interval",
                 minimum=1)
    expect(doc.get("metrics") == HEATMAP_METRICS, path + ".metrics",
           "metric list %r != %r" % (doc.get("metrics"),
                                     HEATMAP_METRICS))
    windows = doc.get("windows")
    expect(isinstance(windows, list) and windows, path + ".windows",
           "must be a non-empty list")
    prev_end = None
    for i, w in enumerate(windows):
        wpath = "%s.windows[%d]" % (path, i)
        expect(isinstance(w, dict), wpath, "must be an object")
        check_number(w.get("start"), wpath + ".start", minimum=0)
        check_number(w.get("end"), wpath + ".end", minimum=0)
        expect(w["end"] > w["start"], wpath,
               "window must cover at least one cycle")
        if prev_end is not None:
            expect(w["start"] == prev_end, wpath,
                   "windows must tile the run (start %s != previous "
                   "end %s)" % (w["start"], prev_end))
        prev_end = w["end"]
        check_number(w.get("samples"), wpath + ".samples", minimum=0)
        lu = w.get("link_util")
        expect(isinstance(lu, dict), wpath + ".link_util",
               "must be an object")
        expect(sorted(lu.keys()) == sorted(DIRS),
               wpath + ".link_util",
               "directions %r != %r" % (sorted(lu.keys()),
                                        sorted(DIRS)))
        for d in DIRS:
            check_grid(lu[d], nodes, "%s.link_util.%s" % (wpath, d))
        for metric in HEATMAP_METRICS[1:]:
            check_grid(w.get(metric), nodes,
                       "%s.%s" % (wpath, metric))
    return len(windows)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--profile", help="footprint.profile/1 document")
    ap.add_argument("--heatmap", help="footprint.heatmap/1 document")
    args = ap.parse_args()
    if not args.profile and not args.heatmap:
        ap.error("nothing to validate: pass --profile and/or --heatmap")

    status = 0
    try:
        if args.profile:
            with open(args.profile) as f:
                doc = json.load(f)
            rows = check_profile(doc, args.profile)
            print("OK %s: %s, %d row(s)"
                  % (args.profile, PROFILE_SCHEMA, rows))
        if args.heatmap:
            with open(args.heatmap) as f:
                doc = json.load(f)
            wins = check_heatmap(doc, args.heatmap)
            print("OK %s: %s, %d window(s)"
                  % (args.heatmap, HEATMAP_SCHEMA, wins))
    except SchemaError as e:
        print("FAIL: %s" % e)
        status = 1
    except (OSError, json.JSONDecodeError) as e:
        print("FAIL: %s" % e)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
