#!/usr/bin/env python3
"""Validate a Chrome trace-event timeline produced by the simulator.

Checks that ``--chrome-trace`` output (default ``trace.json``) is a
well-formed trace-event JSON object document that chrome://tracing and
Perfetto will accept, and that it carries the content the exporter
promises: a ``traceEvents`` list of known phase types with the
mandatory per-phase fields, process-name metadata for the packet
timeline, and the run-metadata footer stamped by ``RunMetadata``.

Exit status: 0 when valid, 1 with a diagnostic otherwise.

Usage:
  tools/check_trace_event.py trace.json
  tools/check_trace_event.py trace.json --min-events 100 --expect-packets
"""

import argparse
import json
import sys

KNOWN_PHASES = {"X", "i", "C", "M", "B", "E"}

REQUIRED_FIELDS = {
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "ts"),
    "C": ("name", "pid", "ts", "args"),
    "M": ("name", "pid"),
}


def fail(msg):
    print(f"check_trace_event: FAIL: {msg}")
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(
        description="Validate a simulator chrome trace")
    ap.add_argument("path", help="trace.json to validate")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of trace events (default 1)")
    ap.add_argument("--expect-packets", action="store_true",
                    help="require packet lifecycle slices "
                         "('pkt' X events)")
    ap.add_argument("--expect-phases", action="store_true",
                    help="require warmup/measure/drain phase markers")
    args = ap.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.path}: not readable as JSON: {e}")

    if not isinstance(doc, dict):
        fail("top level must be a JSON object "
             "(trace-event object format)")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing 'traceEvents' list")
    if len(events) < args.min_events:
        fail(f"only {len(events)} events, expected >= "
             f"{args.min_events}")

    counts = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"event {i} has unknown phase type {ph!r}")
        for field in REQUIRED_FIELDS.get(ph, ()):
            if field not in ev:
                fail(f"event {i} (ph={ph}) lacks '{field}'")
        ts = ev.get("ts")
        if ts is not None and ts < 0:
            fail(f"event {i} has negative timestamp {ts}")
        if ph == "X" and ev["dur"] < 0:
            fail(f"event {i} has negative duration {ev['dur']}")
        counts[ph] = counts.get(ph, 0) + 1

    if args.expect_packets:
        pkt = sum(1 for ev in events
                  if ev.get("ph") == "X" and ev.get("name") == "pkt")
        if pkt == 0:
            fail("no packet lifecycle slices ('pkt' X events)")
        procs = {ev.get("args", {}).get("name")
                 for ev in events
                 if ev.get("ph") == "M"
                 and ev.get("name") == "process_name"}
        if "packets" not in procs:
            fail("no 'packets' process_name metadata event")

    if args.expect_phases:
        marks = {ev["name"] for ev in events if ev.get("ph") == "i"}
        for phase in ("phase: warmup", "phase: measure"):
            if phase not in marks:
                fail(f"missing instant marker '{phase}'")

    meta = doc.get("metadata")
    if not isinstance(meta, dict):
        fail("missing run-metadata footer")
    for key in ("seed", "config_hash", "git"):
        if key not in meta:
            fail(f"metadata lacks '{key}'")

    by_phase = ", ".join(f"{ph}:{n}" for ph, n in sorted(counts.items()))
    print(f"check_trace_event: OK: {args.path}: {len(events)} events "
          f"({by_phase}), metadata seed={meta['seed']} "
          f"config_hash={meta['config_hash']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
